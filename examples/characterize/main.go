// Characterize reproduces the paper's Sec III-C event study interactively:
// it stimulates one core with each hand-crafted stall microbenchmark,
// measures the chip-wide voltage swing relative to an idling machine, then
// repeats the measurement with both cores active to expose cross-core
// interference — the single-core Fig 12 bars and the Fig 13 heatmap.
//
//	go run ./examples/characterize
package main

import (
	"fmt"

	"voltsmooth/internal/core"
	"voltsmooth/internal/sense"
	"voltsmooth/internal/uarch"
	"voltsmooth/internal/workload"
)

const (
	warmup = 15_000
	cycles = 60_000
)

// peakToPeak measures the chip-wide swing (percent of nominal) for the
// given per-core streams.
func peakToPeak(cfg uarch.Config, a, b workload.Stream) float64 {
	chip := uarch.NewChip(cfg)
	if a != nil {
		chip.SetStream(0, a)
	}
	if b != nil {
		chip.SetStream(1, b)
	}
	for i := 0; i < warmup; i++ {
		chip.Cycle()
	}
	scope := sense.NewScope(cfg.PDN.VNom, nil)
	for i := 0; i < cycles; i++ {
		scope.Sample(chip.Cycle())
	}
	return scope.PeakToPeakPercent()
}

func main() {
	cfg := uarch.DefaultConfig()

	idle := peakToPeak(cfg, nil, nil)
	fmt.Printf("idling machine: %.3f%% peak-to-peak (VRM ripple)\n\n", idle)

	fmt.Println("single-core stall events, swing relative to idle (Fig 12):")
	events := workload.EventKinds()
	for _, k := range events {
		rel := peakToPeak(cfg, workload.Microbenchmark(k), nil) / idle
		bar := ""
		for i := 0.0; i < rel; i += 0.5 {
			bar += "#"
		}
		fmt.Printf("  %-5s %6.2fx  %s\n", k, rel, bar)
	}

	fmt.Println("\ncross-core interference, swing relative to idle (Fig 13):")
	fmt.Printf("  %-6s", "c0\\c1")
	for _, k := range events {
		fmt.Printf(" %6s", k)
	}
	fmt.Println()
	for _, k1 := range events {
		fmt.Printf("  %-6s", k1)
		for _, k2 := range events {
			rel := peakToPeak(cfg, workload.Microbenchmark(k1), workload.Microbenchmark(k2)) / idle
			fmt.Printf(" %6.2f", rel)
		}
		fmt.Println()
	}

	fmt.Println("\nworst-case margin from the undervolting procedure (Sec II-C):")
	m := core.FindWorstCaseMargin(cfg, core.VCrit, 60_000, 0.01)
	fmt.Printf("  nominal supply:       %.3f V\n", m.NominalVolts)
	fmt.Printf("  virus fails at:       %.3f V supply\n", m.FailSupplyVolts)
	fmt.Printf("  virus droop there:    %.0f mV\n", m.VirusDroopVolts*1e3)
	fmt.Printf("  worst-case margin:    %.1f%% of nominal (paper: ~14%%)\n", 100*m.MarginFrac)
}
