package voltsmooth

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks of the simulation hot paths. The figure benchmarks run
// at the tiny experiment scale against a session whose shared corpora and
// oracle tables are pre-built once (building them is benchmarked
// separately as BenchmarkCorpusBuild / BenchmarkPairTableBuild), so each
// reported time is the cost of regenerating that figure's analysis.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"voltsmooth/internal/experiments"
	"voltsmooth/internal/parallel"
	"voltsmooth/internal/pdn"
	"voltsmooth/internal/telemetry"
	"voltsmooth/internal/telemetry/wire"
	"voltsmooth/internal/uarch"
	"voltsmooth/internal/workload"
)

var (
	benchOnce sync.Once
	benchSess *experiments.Session
	benchErr  error
)

// benchSession returns the shared, pre-warmed session. A failed pre-build
// is reported here, at the source, with its actual cause — Corpus and
// PairTable unwind failures as abort panics, and swallowing them used to
// surface later as a baffling `b.Fatal("empty render")` in whichever
// figure benchmark ran first.
func benchSession(b *testing.B) *experiments.Session {
	b.Helper()
	benchOnce.Do(func() {
		benchErr = func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					if cause := parallel.AbortCause(r); cause != nil {
						err = cause
						return
					}
					panic(r)
				}
			}()
			benchSess = experiments.NewSession(experiments.Tiny())
			// Pre-build the shared measurements so figure benchmarks
			// time analysis, not corpus construction.
			ctx := context.Background()
			benchSess.Corpus(ctx, pdn.Proc100)
			benchSess.Corpus(ctx, pdn.Proc25)
			benchSess.Corpus(ctx, pdn.Proc3)
			benchSess.PairTable(ctx, pdn.Proc3)
			return nil
		}()
	})
	if benchErr != nil {
		b.Fatalf("bench session pre-build failed: %v", benchErr)
	}
	return benchSess
}

// benchExperiment times one registered experiment end to end.
func benchExperiment(b *testing.B, id string) {
	s := benchSession(b)
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := e.Run(context.Background(), s).Render(); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFig01ProjectedSwings(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFig02MarginFrequency(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig04ImpedanceProfile(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig06DecapReset(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig07CorpusCDF(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig08MarginSweep(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig09FutureCDFs(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10Heatmaps(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkFig11TLBTrace(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12EventSwings(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13InterferenceMatrix(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14NoisePhases(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15StallCorrelation(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16SlidingWindow(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17CoScheduleSpread(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkFig18PolicyScatter(b *testing.B)      { benchExperiment(b, "fig18") }
func BenchmarkFig19PassingIncrease(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkTab1PassingAnalysis(b *testing.B)     { benchExperiment(b, "tab1") }

// sweepWorkerCounts are the fan-out widths the sweep benchmarks compare.
// workers=1 is the serial baseline; comparing its ns/op against the wider
// rows is the measured speedup of the parallel sweep engine on this
// machine (the sweeps are embarrassingly parallel, so it should track the
// core count until memory bandwidth intervenes).
func sweepWorkerCounts() []int {
	counts := []int{1}
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if w > counts[len(counts)-1] {
			counts = append(counts, w)
		}
	}
	return counts
}

// BenchmarkCorpusBuild times construction of one decap variant's full run
// corpus (the pre-run measurement phase shared by Figs 7–10 and Tab I)
// at each sweep width.
func BenchmarkCorpusBuild(b *testing.B) {
	for _, w := range sweepWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSession(experiments.Tiny())
				s.Workers = w
				s.Corpus(context.Background(), pdn.Proc100)
			}
		})
	}
}

// BenchmarkPairTableBuild times construction of the scheduling oracle at
// each sweep width.
func BenchmarkPairTableBuild(b *testing.B) {
	for _, w := range sweepWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSession(experiments.Tiny())
				s.Workers = w
				s.PairTable(context.Background(), pdn.Proc3)
			}
		})
	}
}

// BenchmarkChipCycle measures the simulator hot path: one chip cycle with
// both cores executing (instruction issue + current model + PDN step).
func BenchmarkChipCycle(b *testing.B) {
	chip := uarch.NewChip(uarch.DefaultConfig())
	p, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	q, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	chip.SetStream(0, p.NewStream())
	chip.SetStream(1, q.NewStream())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.Cycle()
	}
}

// BenchmarkPDNStep measures one power-delivery integration substep at the
// exact dt the experiments run: cycle time over the default substep count,
// taken from uarch.DefaultConfig rather than re-derived by hand. (The old
// hand-built dt of 1/(1.86e9·6) exceeded the integrator's stability bound,
// so the "one step" headline number silently measured two subdivided steps
// — a different code path than production.)
func BenchmarkPDNStep(b *testing.B) {
	cfg := uarch.DefaultConfig()
	n := pdn.NewAtLoad(cfg.PDN, 20)
	dt := (1 / cfg.ClockHz) / float64(cfg.Substeps)
	if dt > n.MaxStableStep() {
		b.Fatalf("default substep dt %g exceeds stability bound %g: benchmark would not measure the production path", dt, n.MaxStableStep())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(dt, 20+float64(i&15))
	}
}

// BenchmarkStepCycle measures the real per-cycle kernel of every
// execution-driven experiment: one full chip clock cycle of PDN
// integration at the default substep count, through the fused StepCycle
// path the uarch model drives. This is the number the regression gate
// watches.
func BenchmarkStepCycle(b *testing.B) {
	cfg := uarch.DefaultConfig()
	n := pdn.NewAtLoad(cfg.PDN, 20)
	cycleTime := 1 / cfg.ClockHz
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.StepCycle(cycleTime, 20+float64(i&15), cfg.Substeps)
	}
}

// BenchmarkStreamNext measures synthetic instruction generation.
func BenchmarkStreamNext(b *testing.B) {
	p, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	s := p.NewStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Next()
	}
}

// BenchmarkImpedanceSolve measures the analytic frequency-domain solve.
func BenchmarkImpedanceSolve(b *testing.B) {
	n := pdn.New(pdn.Core2Duo())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.ImpedanceMag(1e6 + float64(i&1023)*1e5)
	}
}

// BenchmarkTelemetryOverhead measures the cost of the telemetry hooks on
// the simulation hot path, off vs on: a full chip cycle (whose PDN step is
// the one per-cycle telemetry touchpoint — a single atomic pointer load
// when disabled, plus one atomic add when enabled). The off/on delta is
// the documented overhead budget (DESIGN §7): it must stay within ~5% of
// cycle time.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B) {
		chip := uarch.NewChip(uarch.DefaultConfig())
		p, err := workload.ByName("gcc")
		if err != nil {
			b.Fatal(err)
		}
		q, err := workload.ByName("mcf")
		if err != nil {
			b.Fatal(err)
		}
		chip.SetStream(0, p.NewStream())
		chip.SetStream(1, q.NewStream())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			chip.Cycle()
		}
	}
	b.Run("off", run)
	b.Run("on", func(b *testing.B) {
		uninstall := wire.Install(telemetry.NewRegistry(), telemetry.NewTrace(0))
		defer uninstall()
		run(b)
	})
}
