// Cache + SSE black-box tests: a real vsmoothd binary serving the
// cross-tenant result cache and the live SSE progress stream of DESIGN
// §12. The single-process test walks the README story — submit, watch
// the run live over text/event-stream, then watch a second tenant's
// identical campaign come back instantly from the cache, byte-identical
// and without a second execution. The fleet test proves the same
// guarantee across processes: worker B serves worker A's completed run
// out of the shared store's cache without executing anything itself.
package e2e

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// submitAs POSTs a spec body under an explicit tenant identity and
// returns the full 202 ack (which carries the cached fields when the
// submission was served from the result cache).
func submitAs(t *testing.T, base, client, body string) map[string]string {
	t.Helper()
	req, _ := http.NewRequest("POST", base+"/jobs", strings.NewReader(body))
	req.Header.Set("X-Client", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || ack["id"] == "" {
		t.Fatalf("submit as %s: status %d ack %v, want 202 with id", client, resp.StatusCode, ack)
	}
	return ack
}

// counters fetches /metrics and returns the counter section.
func counters(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return snap.Counters
}

// streamEvents opens the job's SSE stream against a real server and
// returns every named frame in order (heartbeat comments are dropped —
// cadence is pinned by the in-process suite; here the lifecycle shape is
// the point).
func streamEvents(t *testing.T, base, id string) []struct{ name, data string } {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", base+"/jobs/"+id+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	var events []struct{ name, data string }
	var cur struct{ name, data string }
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024) // result frames carry whole renders
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				cur = struct{ name, data string }{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events
}

// TestCacheAndSSEWalkthrough is the README walkthrough end to end on one
// real process: tenant A submits and follows the run live over SSE
// (monotonic progress, terminal result frame, then EOF); tenant B then
// submits the byte-for-byte identical spec and is acked already-done from
// the cache — same renders, no second execution, all telemetry-visible
// through /metrics.
func TestCacheAndSSEWalkthrough(t *testing.T) {
	sv := startServer(t, t.TempDir())

	id1 := submitJob(t, sv.base)
	events := streamEvents(t, sv.base, id1)
	if len(events) < 2 {
		t.Fatalf("SSE stream carried %d events, want at least a snapshot and the result", len(events))
	}
	var lastUnits float64
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("mid-stream event %q, want only progress before the terminal frame", ev.name)
		}
		var st struct {
			ID       string `json:"id"`
			Progress struct {
				Units float64 `json:"units"`
			} `json:"progress"`
		}
		if err := json.Unmarshal([]byte(ev.data), &st); err != nil {
			t.Fatalf("progress frame: %v (%q)", err, ev.data)
		}
		if st.ID != id1 {
			t.Fatalf("progress for job %s on %s's stream", st.ID, id1)
		}
		if st.Progress.Units < lastUnits {
			t.Fatalf("progress went backwards: %v after %v", st.Progress.Units, lastUnits)
		}
		lastUnits = st.Progress.Units
	}
	final := events[len(events)-1]
	if final.name != "result" {
		t.Fatalf("stream ended on %q, want the result event", final.name)
	}
	var res1 map[string]any
	if err := json.Unmarshal([]byte(final.data), &res1); err != nil {
		t.Fatalf("result frame: %v", err)
	}
	if res1["state"] != "done" {
		t.Fatalf("terminal frame state %v, want done", res1["state"])
	}
	want := renderOf(t, res1, "fig7")

	executed := counters(t, sv.base)["exp.completed"]
	if executed == 0 {
		t.Fatal("first campaign completed no experiments")
	}

	// Tenant B, identical spec: acked 202 but already terminal, renders
	// served from tenant A's run.
	ack := submitAs(t, sv.base, "tenant-b", `{"experiments":["fig7"],"scale":"tiny"}`)
	if ack["state"] != "done" || ack["cached"] != "true" || ack["cache_source"] != id1 {
		t.Fatalf("identical-spec ack = %v, want already-done cached from %s", ack, id1)
	}
	res2 := jobResult(t, sv.base, ack["id"])
	if got := renderOf(t, res2, "fig7"); got != want {
		t.Errorf("cached render differs from the executed run (%d vs %d bytes)", len(got), len(want))
	}
	if res2["cached"] != true || res2["cache_source"] != id1 {
		t.Errorf("cached result carries cached=%v source=%v, want true/%s", res2["cached"], res2["cache_source"], id1)
	}

	after := counters(t, sv.base)
	if after["exp.completed"] != executed {
		t.Errorf("exp.completed %d → %d across the cached submit; the spec executed twice", executed, after["exp.completed"])
	}
	if after["api.cache_hits"] != 1 {
		t.Errorf("api.cache_hits = %d, want 1", after["api.cache_hits"])
	}
	if after["api.sse_streams"] != 1 {
		t.Errorf("api.sse_streams = %d, want 1", after["api.sse_streams"])
	}

	sv.stop(t, syscall.SIGTERM, 143)
}

// TestFleetCacheAdoption pins the cross-process cache: worker A executes
// a campaign into the shared store; worker B — booted afterwards, its
// own process with zero executions — serves an identical spec from the
// durable cache entry, through its own lease fence, without running a
// single experiment.
func TestFleetCacheAdoption(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet cache campaign")
	}

	store := t.TempDir()
	svA := startServer(t, store, fleetArgs("A")...)
	id1 := submitJob(t, svA.base)
	want := renderOf(t, jobResult(t, svA.base, id1), "fig7")

	svB := startServer(t, store, fleetArgs("B")...)
	if n := counters(t, svB.base)["exp.completed"]; n != 0 {
		t.Fatalf("fresh worker B has exp.completed = %d, want 0", n)
	}

	// Fleet submissions always go through the queue and the job's lease
	// fence; the cache is consulted at claim time, so the ack is a plain
	// queued 202 and the job turns terminal moments later.
	ack := submitAs(t, svB.base, "tenant-b", `{"experiments":["fig7"],"scale":"tiny"}`)
	res := jobResult(t, svB.base, ack["id"])
	if res["cached"] != true || res["cache_source"] != id1 {
		t.Fatalf("B's result carries cached=%v source=%v, want true/%s", res["cached"], res["cache_source"], id1)
	}
	if got := renderOf(t, res, "fig7"); got != want {
		t.Errorf("B's cached render differs from A's execution (%d vs %d bytes)", len(got), len(want))
	}

	after := counters(t, svB.base)
	if after["exp.completed"] != 0 {
		t.Errorf("worker B executed %d experiments serving a cached spec, want 0", after["exp.completed"])
	}
	if after["api.cache_hits"] != 1 {
		t.Errorf("worker B api.cache_hits = %d, want 1", after["api.cache_hits"])
	}

	svA.stop(t, syscall.SIGTERM, 143)
	svB.stop(t, syscall.SIGTERM, 143)
}
