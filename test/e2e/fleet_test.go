// Fleet-mode black-box tests: several real vsmoothd binaries sharing one
// -store, coordinating job ownership through per-job lease files. The
// headline property is failover — SIGKILL the owning worker at a seeded
// chaos kill-point and a surviving peer must detect the lease expiring,
// re-claim the job, replay its journal, and finish byte-identically — and
// its dual, fencing: a paused-then-resumed worker must never push its
// stale outcome over the successor's run.
package e2e

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"voltsmooth/internal/lease"
	"voltsmooth/internal/lease/leasetest"
)

// fleetArgs are the fleet flags shared by every worker in these tests:
// a short TTL so failover fits in test time, and a scan cadence well
// under it.
func fleetArgs(workerID string, extra ...string) []string {
	return append([]string{
		"-fleet",
		"-worker-id", workerID,
		"-lease-ttl", "1s",
		"-scan-interval", "200ms",
	}, extra...)
}

// submitSpec POSTs an arbitrary spec body and returns the job ID.
func submitSpec(t *testing.T, base, body string) string {
	t.Helper()
	req, _ := http.NewRequest("POST", base+"/jobs", strings.NewReader(body))
	req.Header.Set("X-Client", "e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || ack["id"] == "" {
		t.Fatalf("submit: status %d ack %v, want 202 with id", resp.StatusCode, ack)
	}
	return ack["id"]
}

// jobStatus fetches one job's status JSON from a worker (200 only).
func jobStatus(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	json.NewDecoder(resp.Body).Decode(&st)
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	return st
}

// assertLeaseHistory loads the job's lease.log and asserts the fleet's
// core ownership invariants: at least one claim, strictly increasing
// epochs, no two workers ever simultaneously live, and the final claim by
// wantLast.
func assertLeaseHistory(t *testing.T, store, id, wantLast string) []lease.Event {
	t.Helper()
	hist, err := lease.History(nil, filepath.Join(store, "jobs", id))
	if err != nil {
		t.Fatalf("lease history: %v", err)
	}
	var claims []lease.Event
	for _, ev := range hist {
		if ev.Op == "claim" {
			claims = append(claims, ev)
		}
	}
	if len(claims) == 0 {
		t.Fatal("lease history has no claims")
	}
	leasetest.AssertExclusiveOwnership(t, hist)
	if last := claims[len(claims)-1]; last.WorkerID != wantLast {
		t.Errorf("last claim by %s (epoch %d), want %s", last.WorkerID, last.Epoch, wantLast)
	}
	return hist
}

// TestFleetKillFailover is the fleet acceptance test: two real vsmoothd
// binaries share one store; the worker that owns the job SIGKILLs itself
// at a seeded chaos kill-point (the plane is wired under both its journal
// and its lease layer); the survivor must observe the lease expire,
// re-claim at a higher epoch, replay the journal, and produce renders
// byte-identical to an uninterrupted reference run.
func TestFleetKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet failover campaign")
	}

	// Uninterrupted reference.
	ref := startServer(t, t.TempDir())
	want := renderOf(t, jobResult(t, ref.base, submitJob(t, ref.base)), "fig7")
	ref.stop(t, syscall.SIGTERM, 143)

	store := t.TempDir()
	// Worker A claims its own admission immediately; the kill-point lands
	// mid-campaign, after checkpoints exist, before the job can finish.
	svA := startServer(t, store, fleetArgs("A", "-chaos-kill-at-op", "40")...)
	svB := startServer(t, store, fleetArgs("B")...)

	id := submitJob(t, svA.base)
	svA.waitKilled(t)

	// The survivor takes over after lease expiry and finishes the job.
	res := jobResult(t, svB.base, id)
	if got := renderOf(t, res, "fig7"); got != want {
		t.Errorf("failover render differs from uninterrupted reference\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if resumed, _ := res["resumed_units"].(float64); resumed <= 0 {
		t.Errorf("resumed_units = %v, want > 0 (B must replay A's checkpoints)", res["resumed_units"])
	}

	hist := assertLeaseHistory(t, store, id, "B")
	workers := map[string]bool{}
	for _, ev := range hist {
		if ev.Op == "claim" {
			workers[ev.WorkerID] = true
		}
	}
	if !workers["A"] || !workers["B"] {
		t.Errorf("claim history spans %v, want both A (original owner) and B (takeover)", workers)
	}

	// B's status view exposes the final ownership.
	if st := jobStatus(t, svB.base, id); st != nil {
		if st["owner"] != "B" {
			t.Errorf("owner = %v, want B", st["owner"])
		}
	}
	svB.stop(t, syscall.SIGTERM, 143)

	// A died by SIGKILL mid-job: whatever debris it left (its lease lock
	// sidecar, a torn tmp file) must be fully repairable.
	fsckStore(t, store)
}

// TestFleetFenceStaleWorker pins the epoch fence end to end with real
// processes and SIGSTOP: worker A is paused mid-job until its lease
// expires; worker B claims the job at the next epoch and waits out A's
// still-held journal flock; when A resumes, its next lease renewal is
// fenced — A abandons the run without writing a result — and B's run is
// the one the store records, journal replay included.
func TestFleetFenceStaleWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fence campaign with SIGSTOP timing")
	}

	// The multi-experiment spec gives the run enough runway that A is
	// still mid-job when it gets paused.
	const spec = `{"experiments":["all"],"scale":"tiny"}`

	ref := startServer(t, t.TempDir())
	refRes := jobResult(t, ref.base, submitSpec(t, ref.base, spec))
	ref.stop(t, syscall.SIGTERM, 143)

	store := t.TempDir()
	svA := startServer(t, store, fleetArgs("A")...)
	id := submitSpec(t, svA.base, spec)

	// Wait until A is genuinely mid-campaign (units flowing), then pause
	// it — a stand-in for a long GC pause, an NFS stall, a VM migration.
	deadline := time.Now().Add(time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never started making progress on A")
		}
		st := jobStatus(t, svA.base, id)
		if st != nil && st["state"] == "running" {
			if prog, ok := st["progress"].(map[string]any); ok {
				if units, _ := prog["units"].(float64); units >= 3 {
					break
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := svA.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}

	// B arrives, sees the lease lapse, and claims the job out from under
	// the paused A.
	svB := startServer(t, store, fleetArgs("B")...)
	deadline = time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("B never claimed the paused worker's job")
		}
		if st := jobStatus(t, svB.base, id); st != nil && st["owner"] == "B" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	// A wakes up fenced. Its heartbeat hits the new epoch, the run is
	// abandoned, and — critically — the journal flock is released so B
	// can resume from A's checkpoints.
	if err := svA.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}

	res := jobResult(t, svB.base, id)
	if resumed, _ := res["resumed_units"].(float64); resumed <= 0 {
		t.Errorf("resumed_units = %v, want > 0 (the terminal result must be B's resumed run, not A's)", res["resumed_units"])
	}
	wantRenders := refRes["renders"].(map[string]any)
	gotRenders := res["renders"].(map[string]any)
	if len(gotRenders) != len(wantRenders) {
		t.Fatalf("render count %d, want %d", len(gotRenders), len(wantRenders))
	}
	for exp, want := range wantRenders {
		if gotRenders[exp] != want {
			t.Errorf("render %s differs from the fault-free reference", exp)
		}
	}

	hist := assertLeaseHistory(t, store, id, "B")
	fencedA := false
	for _, ev := range hist {
		if ev.Op == "fence" && ev.WorkerID == "A" {
			fencedA = true
		}
	}
	if !fencedA {
		t.Error("lease history records no fence rejection for the stale worker A")
	}

	// The fenced worker is degraded, not broken: it still drains cleanly.
	svA.stop(t, syscall.SIGTERM, 143)
	svB.stop(t, syscall.SIGTERM, 143)
	fsckStore(t, store)
}
