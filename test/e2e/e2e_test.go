// Package e2e black-box tests the vsmoothd service binary: a real build
// of cmd/vsmoothd, driven only through its HTTP surface and POSIX
// signals. The centerpiece is the kill–restart test: a job is cut down by
// a real SIGKILL at a deterministic chaos kill-point mid-journal-write,
// the server is restarted over the same store, and the recovered job's
// rendered figures must be byte-identical to an uninterrupted reference
// run — the repository's crash-recovery promise, proven end to end.
package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// binPath is the vsmoothd binary TestMain builds once for every test.
var binPath string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "vsmoothd-e2e-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e: mktemp:", err)
		os.Exit(1)
	}
	binPath = filepath.Join(tmp, "vsmoothd")
	build := exec.Command("go", "build", "-o", binPath, "voltsmooth/cmd/vsmoothd")
	build.Dir = "../.." // module root
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "e2e: build vsmoothd: %v\n%s", err, out)
		os.RemoveAll(tmp)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}

// server is one running vsmoothd process under test.
type server struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	waited chan error
}

var addrRE = regexp.MustCompile(`serving on http://([^ ]+) `)

// startServer launches the binary against the store and waits for its
// readiness line (which carries the bound port). Extra args are appended
// after the defaults.
func startServer(t *testing.T, store string, extra ...string) *server {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-store", store}, extra...)
	cmd := exec.Command(binPath, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	sv := &server{cmd: cmd, waited: make(chan error, 1)}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("[vsmoothd] %s", line)
			if m := addrRE.FindStringSubmatch(line); m != nil {
				select {
				case addr <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { sv.waited <- cmd.Wait() }()

	select {
	case a := <-addr:
		sv.base = "http://" + a
	case err := <-sv.waited:
		t.Fatalf("vsmoothd exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("vsmoothd never reported its listen address")
	}
	t.Cleanup(func() {
		if sv.cmd.ProcessState == nil {
			sv.cmd.Process.Kill()
			<-sv.waited
		}
	})
	return sv
}

// stop sends sig and asserts the process exits with wantCode.
func (sv *server) stop(t *testing.T, sig syscall.Signal, wantCode int) {
	t.Helper()
	if err := sv.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sv.waited:
		var code int
		if exit, ok := err.(*exec.ExitError); ok {
			code = exit.ExitCode()
		} else if err != nil {
			t.Fatalf("wait: %v", err)
		}
		if code != wantCode {
			t.Fatalf("exit code %d after %v, want %d (128+signum)", code, sig, wantCode)
		}
	case <-time.After(60 * time.Second):
		sv.cmd.Process.Kill()
		t.Fatalf("vsmoothd did not exit within 60s of %v", sig)
	}
}

// waitKilled waits for the process to die and asserts SIGKILL ended it.
func (sv *server) waitKilled(t *testing.T) {
	t.Helper()
	select {
	case err := <-sv.waited:
		exit, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("vsmoothd exited cleanly (%v), want death by SIGKILL", err)
		}
		ws, ok := exit.Sys().(syscall.WaitStatus)
		if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("vsmoothd ended with %v, want SIGKILL", err)
		}
	case <-time.After(2 * time.Minute):
		sv.cmd.Process.Kill()
		t.Fatal("chaos kill-point never fired")
	}
}

// submitJob POSTs the standard one-experiment campaign and returns the ID.
func submitJob(t *testing.T, base string) string {
	t.Helper()
	body := `{"experiments":["fig7"],"scale":"tiny"}`
	req, _ := http.NewRequest("POST", base+"/jobs", strings.NewReader(body))
	req.Header.Set("X-Client", "e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || ack["id"] == "" {
		t.Fatalf("submit: status %d ack %v, want 202 with id", resp.StatusCode, ack)
	}
	return ack["id"]
}

// jobResult fetches a job's terminal result, polling status until it gets
// there.
func jobResult(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch st["state"] {
		case "done":
			rresp, err := http.Get(base + "/jobs/" + id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			defer rresp.Body.Close()
			var res map[string]any
			if err := json.NewDecoder(rresp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			if rresp.StatusCode != http.StatusOK {
				t.Fatalf("result: status %d (%v)", rresp.StatusCode, res)
			}
			return res
		case "failed", "canceled":
			t.Fatalf("job %s reached %v: %v", id, st["state"], st["error"])
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// renderOf extracts one experiment's rendered text from a result payload.
func renderOf(t *testing.T, res map[string]any, exp string) string {
	t.Helper()
	renders, ok := res["renders"].(map[string]any)
	if !ok {
		t.Fatalf("result has no renders: %v", res)
	}
	text, ok := renders[exp].(string)
	if !ok || text == "" {
		t.Fatalf("result has no render for %s", exp)
	}
	return text
}

// TestSmoke is the -short service check: boot, health, one whole job
// lifecycle over HTTP, graceful SIGTERM with exit 143.
func TestSmoke(t *testing.T) {
	sv := startServer(t, t.TempDir())

	resp, err := http.Get(sv.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(sv.base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	id := submitJob(t, sv.base)
	res := jobResult(t, sv.base, id)
	if renderOf(t, res, "fig7") == "" {
		t.Fatal("empty render")
	}

	// /metrics reflects the job through the wired api.* instruments.
	mresp, err := http.Get(sv.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, name := range []string{"api.jobs_admitted", "api.jobs_completed", "exp.units"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("/metrics missing %q", name)
		}
	}

	sv.stop(t, syscall.SIGTERM, 143)
}

// fsckStore runs `vsmoothd -fsck -fsck-repair` over the store and asserts
// it exits 0 — the store was clean, or every piece of crash debris (tmp
// orphans, stale lock sidecars, torn cache entries) was provably safe to
// remove and was removed. Every kill test ends with this: a SIGKILLed
// store must never hold damage the scrubber cannot repair.
func fsckStore(t *testing.T, store string) {
	t.Helper()
	cmd := exec.Command(binPath, "-store", store, "-fsck", "-fsck-repair")
	out, err := cmd.CombinedOutput()
	if len(out) > 0 {
		t.Logf("[fsck] %s", strings.TrimSpace(string(out)))
	}
	if err != nil {
		t.Fatalf("fsck after kill found unrepairable damage: %v", err)
	}
}

// TestKillRestartRecovery is the crash-recovery acceptance test. A
// reference server runs the campaign uninterrupted. A second server runs
// the same campaign but SIGKILLs itself at a deterministic journal
// operation — a real kernel kill mid-write, no cleanup. Restarted over
// the same store, it must recover the job, resume from the journal
// (resumed_units > 0), and produce byte-identical rendered figures.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process kill-restart campaign")
	}

	// Uninterrupted reference.
	ref := startServer(t, t.TempDir())
	refRes := jobResult(t, ref.base, submitJob(t, ref.base))
	want := renderOf(t, refRes, "fig7")
	ref.stop(t, syscall.SIGTERM, 143)

	// Crash run: the chaos plane SIGKILLs the server at journal op 25 —
	// mid-campaign, after some units are checkpointed, before the end.
	store := t.TempDir()
	crash := startServer(t, store, "-chaos-kill-at-op", "25")
	id := submitJob(t, crash.base)
	crash.waitKilled(t)

	// The store must already hold the acked job (202 implies durability)
	// and a journal with the pre-kill checkpoints.
	if _, err := os.Stat(filepath.Join(store, "jobs", id, "job.json")); err != nil {
		t.Fatalf("acked job not durable across SIGKILL: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(store, "jobs", id, "journal.jsonl")); err != nil || fi.Size() == 0 {
		t.Fatalf("journal missing or empty after SIGKILL: %v", err)
	}

	// Scrub the freshly-torn store before restarting over it: the SIGKILL
	// may have left tmp orphans mid-rename, and fsck must repair everything
	// it finds without touching the journal the recovery depends on.
	fsckStore(t, store)

	// Restart over the same store: recovery re-enqueues and resumes.
	again := startServer(t, store)
	res := jobResult(t, again.base, id)
	if got := renderOf(t, res, "fig7"); got != want {
		t.Errorf("recovered render differs from uninterrupted reference\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	resumed, _ := res["resumed_units"].(float64)
	if resumed <= 0 {
		t.Errorf("resumed_units = %v, want > 0 (the journal must have replayed the pre-kill units)", res["resumed_units"])
	}
	again.stop(t, syscall.SIGTERM, 143)
	fsckStore(t, store)
}

// TestDrainUnderLoad pins graceful shutdown with work in flight: SIGTERM
// while a job runs lets it finish within the drain budget, flips /readyz,
// refuses new submissions with 503, and still exits 143.
func TestDrainUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process campaign test")
	}
	store := t.TempDir()
	sv := startServer(t, store, "-drain-timeout", "120s")
	id := submitJob(t, sv.base)

	// Give the job a moment to start, then begin the drain.
	time.Sleep(300 * time.Millisecond)
	if err := sv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// While draining, new submissions bounce with 503 (the HTTP listener
	// stays up until running jobs finish). The window is real but brief —
	// poll rather than assume.
	sawRefusal := false
	for i := 0; i < 50; i++ {
		resp, err := http.Post(sv.base+"/jobs", "application/json",
			strings.NewReader(`{"experiments":["fig7"],"scale":"tiny"}`))
		if err != nil {
			break // listener closed: drain finished
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawRefusal = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !sawRefusal {
		t.Error("never observed a 503 refusal during drain")
	}

	select {
	case err := <-sv.waited:
		exit, ok := err.(*exec.ExitError)
		if !ok || exit.ExitCode() != 143 {
			t.Fatalf("drained exit: %v, want code 143", err)
		}
	case <-time.After(2 * time.Minute):
		sv.cmd.Process.Kill()
		t.Fatal("drain never completed")
	}

	// The running job either finished (result.json) or was checkpointed
	// for the next boot — both are legitimate drain outcomes; what is not
	// is a lost job.
	if _, err := os.Stat(filepath.Join(store, "jobs", id, "job.json")); err != nil {
		t.Fatalf("job record lost across drain: %v", err)
	}
}
